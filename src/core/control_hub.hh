/**
 * @file
 * The Duet Control Hub (paper Sec. II-E/II-F).
 *
 * Two submodules:
 *  - FPGA Manager: programming engine (bitstream load + integrity check),
 *    programmable clock generator, exception handler (timeouts on blocking
 *    register accesses), feature switches.
 *  - Soft Register Interface with Shadow Registers residing in the fast
 *    clock domain: plain, FPGA-bound FIFO, CPU-bound FIFO and token FIFO
 *    registers ack/respond without entering the eFPGA; normal registers
 *    forward across the CDC and block younger accesses (strict I/O
 *    ordering, Fig. 6c). When deactivated (e.g. after a timeout), the
 *    interface returns bogus data so the system is never halted.
 *
 * FPSoC mode (shadowEnabled = false) downgrades every register to Normal,
 * reproducing the paper's FPSoC baseline.
 */

#ifndef DUET_CORE_CONTROL_HUB_HH
#define DUET_CORE_CONTROL_HUB_HH

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "core/ctrl_msg.hh"
#include "core/fpga_reg_file.hh"
#include "core/memory_hub.hh"
#include "fpga/async_fifo.hh"
#include "fpga/fabric.hh"
#include "noc/mesh.hh"
#include "sim/stats.hh"

namespace duet
{

/** Control Hub configuration. */
struct ControlHubParams
{
    bool shadowEnabled = true;     ///< false = FPSoC baseline
    Cycles timeoutCycles = 500000; ///< blocking-access timeout (fast cycles)
    unsigned ctrlFifoDepth = 16;
    unsigned syncStages = 2;
    unsigned progBytesPerCycle = 4; ///< programming engine throughput
};

/** MMIO offsets inside an adapter's control window. */
namespace ctrl_reg
{
constexpr Addr kHubActive = 0x00;  ///< bitmask: memory hub activation
constexpr Addr kClockMhz = 0x08;   ///< eFPGA clock frequency
constexpr Addr kTimeout = 0x10;    ///< timeout limit (fast cycles)
constexpr Addr kReset = 0x18;      ///< write: reset the soft accelerator
constexpr Addr kErrCode = 0x20;    ///< read: error; write 0: clear
constexpr Addr kTlbSelect = 0x28;  ///< memory-hub index for TLB ops
constexpr Addr kTlbVpn = 0x30;     ///< latch the VPN
constexpr Addr kTlbPpn = 0x38;     ///< write commits (vpn -> ppn)
constexpr Addr kTlbKill = 0x40;    ///< write vpn: kill faulting accesses
constexpr Addr kFwdInvs = 0x48;    ///< bitmask: forward invalidations
constexpr Addr kTlbEnable = 0x50;  ///< bitmask: hub TLB enable
constexpr Addr kAtomics = 0x58;    ///< bitmask: hub atomics enable
constexpr Addr kStatus = 0x60;     ///< fabric state (read-only)
constexpr Addr kRegBase = 0x100;   ///< soft registers start here
} // namespace ctrl_reg

/** Bogus value returned by a deactivated Soft Register Interface. */
constexpr std::uint64_t kBogusData = 0xBAD0BAD0BAD0BAD0ull;

/** The Control Hub: one per Duet Adapter, on the adapter's C-tile. */
class ControlHub
{
  public:
    ControlHub(ClockDomain &fast_clk, ClockDomain &fpga_clk,
               std::string name, const ControlHubParams &params,
               Fabric &fabric, Mesh &mesh, NodeId self, Addr mmio_base);

    /** Wire the adapter's memory hubs (feature-switch targets). */
    void setMemoryHubs(std::vector<MemoryHub *> hubs)
    {
        hubs_ = std::move(hubs);
    }

    /** Attach the (slow-domain) register file after programming. */
    void attachRegFile(FpgaRegFile *rf);

    /** NoC input: MMIO reads/writes from cores. */
    void receive(const Message &msg);

    /** The CPU->FPGA control FIFO (drained by the FpgaRegFile). */
    AsyncFifo<CtrlMsg> &toFpga() { return toFpga_; }
    /** The FPGA->CPU control FIFO (drained by this hub). */
    AsyncFifo<CtrlMsg> &fromFpga() { return fromFpga_; }

    /**
     * FPGA Manager: program the fabric. Deactivates nothing by itself —
     * the Adapter deactivates hubs first (feature-switch discipline).
     * @param image    the bitstream
     * @param on_done  called with success/failure after the load delay
     */
    void program(const Bitstream &image, std::function<void(bool)> on_done);

    /** Programmable clock generator. */
    void setFpgaClockMHz(std::uint64_t mhz);

    HubError errorCode() const { return error_; }
    bool deactivated() const { return deactivated_; }
    const std::string &name() const { return name_; }
    Addr mmioBase() const { return mmioBase_; }
    const ControlHubParams &params() const { return params_; }

    /** Install a hook run on accelerator reset (kReset MMIO). */
    void setResetHook(std::function<void()> h) { resetHook_ = std::move(h); }

    Counter mmioReads, mmioWrites, timeouts, bogusResponses, programs;

    void registerStats(StatRegistry &reg) const;

    /** Rewind to construction state (scenario warm-start): detaches the
     *  register file, drops shadows and the workload-installed reset
     *  hook, and restores MMIO-mutable params (timeout). Only valid
     *  after the event queue was reset. */
    void reset();

  private:
    struct MmioOp
    {
        bool isRead = false;
        Addr offset = 0;
        std::uint64_t wdata = 0;
        std::uint32_t txnId = 0;
        NodeId src;
        LatencyTrace *trace = nullptr;
        Tick arrival = 0;
    };

    /** Fast-domain shadow state for one soft register. */
    struct Shadow
    {
        RegKind kind = RegKind::Normal;
        std::uint64_t value = 0;          ///< plain shadow copy
        unsigned credits = 0;             ///< FPGA-bound entries in flight
        std::deque<std::uint64_t> data;   ///< CPU-bound shadow queue
        std::uint64_t tokens = 0;
        std::deque<MmioOp> parked;        ///< blocked CPU-bound readers
    };

    void respond(const MmioOp &op, std::uint64_t value);
    void pump();
    /** @return true if the head op finished (pop and continue). */
    bool processHead(MmioOp &op);
    bool handleCtrlSpace(MmioOp &op);
    void handleFromFpga(CtrlMsg &&msg);
    void armTimeout(std::uint64_t token);
    void latchTimeout();

    ClockDomain &fastClk_;
    ClockDomain &fpgaClk_;
    std::string name_;
    ControlHubParams params_;
    /// Ctor-time params snapshot: reset() rewinds the MMIO-mutable
    /// timeout to this.
    ControlHubParams initialParams_;
    Fabric &fabric_;
    Mesh &mesh_;
    NodeId self_;
    Addr mmioBase_;
    std::vector<MemoryHub *> hubs_;
    FpgaRegFile *regFile_ = nullptr;

    AsyncFifo<CtrlMsg> toFpga_;
    AsyncFifo<CtrlMsg> fromFpga_;

    std::deque<MmioOp> queue_;
    bool pumping_ = false;
    std::vector<Shadow> shadows_;

    // Blocking-access state (normal register round trips).
    bool headBlocked_ = false;
    std::uint32_t blockedTxn_ = 0;
    std::uint64_t blockToken_ = 0; ///< increments on every block/unblock

    bool deactivated_ = false;
    HubError error_ = HubError::None;
    std::uint64_t tlbVpnLatch_ = 0;
    std::uint64_t tlbSelect_ = 0;
    std::uint32_t nextFwdTxn_ = 1;
    std::function<void()> resetHook_;
};

} // namespace duet

#endif // DUET_CORE_CONTROL_HUB_HH
