/**
 * @file
 * The eFPGA-side half of the Soft Register Interface.
 *
 * Lives in the slow clock domain. Holds the soft registers the accelerator
 * actually interacts with: FPGA-bound FIFO payloads land here after the
 * CDC; CPU-bound pushes and plain syncs leave from here. Accelerators may
 * also install custom handlers on Normal registers (e.g. the CPU/eFPGA
 * barrier of Sec. II-F, where the eFPGA acknowledges a read when it
 * reaches the barrier).
 *
 * When the Control Hub runs in FPSoC mode every register is downgraded to
 * Normal: all accesses are forwarded here and served at the slow clock,
 * including the FIFO semantics.
 */

#ifndef DUET_CORE_FPGA_REG_FILE_HH
#define DUET_CORE_FPGA_REG_FILE_HH

#include <deque>
#include <functional>
#include <vector>

#include "core/ctrl_msg.hh"
#include "fpga/async_fifo.hh"
#include "sim/task.hh"

namespace duet
{

/** Per-accelerator register layout, fixed at eFPGA programming time. */
struct RegLayout
{
    std::vector<RegKind> kinds;
    unsigned fifoDepth = 16;

    static RegLayout
    uniform(unsigned n, RegKind k, unsigned depth = 16)
    {
        RegLayout l;
        l.kinds.assign(n, k);
        l.fifoDepth = depth;
        return l;
    }
};

/** The slow-domain register file + accelerator-facing port. */
class FpgaRegFile
{
  public:
    /** Custom read handler: produce the value (may complete later). */
    using ReadHandler =
        std::function<void(Future<std::uint64_t>::Setter)>;
    /** Custom write handler: consume the value, then signal done. */
    using WriteHandler =
        std::function<void(std::uint64_t, Future<void>::Setter)>;

    FpgaRegFile(ClockDomain &fpga_clk, std::string name,
                const RegLayout &layout);

    /** Wire the FPGA->CPU control FIFO. */
    void bindOut(AsyncFifo<CtrlMsg> *out) { out_ = out; }

    /** Drain of the CPU->FPGA control FIFO. */
    void receive(CtrlMsg &&msg);

    const RegLayout &layout() const { return layout_; }

    // --------------------------------------------------------------
    // Accelerator-side API (slow clock domain).
    // --------------------------------------------------------------

    /** Pop one entry from an FPGA-bound FIFO register (blocking). */
    Future<std::uint64_t> pop(unsigned reg);

    /** True if an FPGA-bound FIFO register has data (peek, no cycle). */
    bool hasData(unsigned reg) const { return !regs_[reg].fifo.empty(); }

    /** Push a value into a CPU-bound FIFO register. */
    void push(unsigned reg, std::uint64_t v);

    /** Push @p n dataless tokens into a token FIFO register. */
    void pushTokens(unsigned reg, std::uint64_t n = 1);

    /** Read the eFPGA-local copy of a plain shadowed register. */
    std::uint64_t readPlain(unsigned reg) const { return regs_[reg].value; }

    /** Write a plain shadowed register and actively sync it back. */
    void writePlain(unsigned reg, std::uint64_t v);

    /** Install custom Normal-register semantics. */
    void
    setNormalHandlers(unsigned reg, ReadHandler rd, WriteHandler wr)
    {
        regs_[reg].readHandler = std::move(rd);
        regs_[reg].writeHandler = std::move(wr);
    }

    /** Reset all register state (accelerator reset). */
    void reset();

    /** Shadowed (Duet) vs downgraded-to-normal (FPSoC) operation. */
    void setShadowed(bool s) { shadowed_ = s; }
    bool shadowed() const { return shadowed_; }

    Counter msgsIn, msgsOut;

  private:
    struct Reg
    {
        RegKind kind = RegKind::Normal;
        std::uint64_t value = 0;
        std::deque<std::uint64_t> fifo; ///< FPGA-bound data / CpuFifo data
        std::uint64_t tokens = 0;
        std::deque<Future<std::uint64_t>::Setter> poppers; ///< parked pops
        std::deque<std::uint32_t> parkedReads; ///< NormalRead txns waiting
        ReadHandler readHandler;
        WriteHandler writeHandler;
    };

    void send(CtrlMsg msg);
    void serveNormalRead(Reg &r, std::uint32_t txn);
    void serveNormalWrite(Reg &r, std::uint64_t val, std::uint32_t txn);

    ClockDomain &clk_;
    std::string name_;
    RegLayout layout_;
    std::vector<Reg> regs_;
    AsyncFifo<CtrlMsg> *out_ = nullptr;
    std::deque<CtrlMsg> outQ_;
    bool outPumping_ = false;
    bool shadowed_ = true;
    void pumpOut();
};

} // namespace duet

#endif // DUET_CORE_FPGA_REG_FILE_HH
