/**
 * @file
 * The Duet Adapter: one Control Hub + one or more Memory Hubs + the eFPGA
 * side (fabric, clock, register file, soft caches, scratchpad), composed
 * exactly as the paper's Fig. 3.
 *
 * The adapter also models the installation flow of a soft accelerator:
 * deactivate memory hubs -> program the fabric (bitstream load + integrity
 * check) -> set the eFPGA clock -> configure feature switches -> start the
 * accelerator logic.
 */

#ifndef DUET_CORE_ADAPTER_HH
#define DUET_CORE_ADAPTER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/control_hub.hh"
#include "core/fpga_reg_file.hh"
#include "core/memory_hub.hh"
#include "fpga/fabric.hh"
#include "fpga/scratchpad.hh"
#include "fpga/soft_cache.hh"

namespace duet
{

class DuetAdapter;

/** Everything a soft accelerator's logic can reach inside the eFPGA. */
struct FpgaContext
{
    ClockDomain &clk;                 ///< the (slow) eFPGA clock
    FpgaRegFile &regs;                ///< soft register file
    std::vector<SoftCache *> mem;     ///< one port per Memory Hub
    Scratchpad &spad;                 ///< non-coherent BRAM memory
    DuetAdapter &adapter;             ///< for fault-injection tests
};

/** A synthesized soft-accelerator image (see DESIGN.md substitutions:
 *  resources/Fmax imported from the paper's CAD results). */
struct AccelImage
{
    std::string name;
    FabricResources resources;
    std::uint64_t fmaxMHz = 100;
    RegLayout regLayout = RegLayout::uniform(4, RegKind::Plain);
    /** Soft-cache configuration per memory hub used (pass-through if
     *  enabled=false). Missing entries default to pass-through. */
    std::vector<SoftCacheParams> softCaches;
    bool useTlb = false;
    bool atomics = false;
    /** Spawn the accelerator's logic (coroutines in the eFPGA domain). */
    std::function<void(FpgaContext &)> start;
};

/** Adapter-wide configuration. */
struct AdapterParams
{
    unsigned numMemoryHubs = 1;
    MemoryHubParams hub;
    ControlHubParams ctrl;
    FabricConfig fabric;
    std::size_t scratchpadBytes = 16 * 1024;
    std::uint64_t defaultFpgaMhz = 100;
    /** FPSoC baseline: shadow registers downgraded; the FPGA-side cache
     *  (proxy) is clocked in the slow domain (the system builder arranges
     *  the CDC on its NoC ports). */
    bool fpsocMode = false;
};

/** A Duet Adapter instance. */
class DuetAdapter
{
  public:
    /**
     * @param fast_clk the processor/NoC clock domain
     * @param name     stats prefix
     * @param params   configuration
     * @param mesh     the NoC
     * @param proxies  one Proxy Cache per memory hub (tile L2s of the
     *                 adapter's C-/M-tiles, already NoC-wired)
     * @param ctrl_node NoC endpoint of the Control Hub (C-tile)
     * @param mmio_base base of this adapter's MMIO window
     */
    DuetAdapter(ClockDomain &fast_clk, ClockDomain &fpga_clk,
                std::string name, const AdapterParams &params, Mesh &mesh,
                std::vector<PrivateCache *> proxies, NodeId ctrl_node,
                Addr mmio_base);

    /** Build a sealed bitstream for an image on this fabric. */
    Bitstream makeBitstream(const AccelImage &img) const;

    /**
     * Install a soft accelerator: full programming flow with timing.
     * @param on_done called with success once the fabric is running
     */
    void install(const AccelImage &img, std::function<void(bool)> on_done);

    /** Convenience: install and run the event queue until configured. */
    bool installBlocking(const AccelImage &img);

    ControlHub &ctrl() { return *ctrl_; }
    MemoryHub &hub(unsigned i) { return *hubs_.at(i); }
    unsigned numHubs() const { return static_cast<unsigned>(hubs_.size()); }
    FpgaRegFile *regs() { return regFile_.get(); }
    SoftCache *softCache(unsigned i) { return softCaches_.at(i).get(); }
    ClockDomain &fpgaClock() { return fpgaClk_; }
    Fabric &fabric() { return fabric_; }
    Scratchpad &scratchpad() { return spad_; }
    const AdapterParams &params() const { return params_; }
    const std::string &name() const { return name_; }

    /** Fault injection for tests: next request from soft cache @p i gets a
     *  parity error. */
    void injectParityError(unsigned i);

    /** Fallback latency-attribution sink for soft caches
     *  (`--latency-breakdown`). Soft caches are built per install(), so
     *  the adapter remembers the sink and applies it to each new one. */
    void
    setDefaultTrace(LatencyTrace *t)
    {
        defaultTrace_ = t;
        for (auto &sc : softCaches_)
            sc->setDefaultTrace(t);
    }

    void registerStats(StatRegistry &reg) const;

    /** Rewind to construction state (scenario warm-start): uninstalls
     *  the soft accelerator (register file, soft caches, fabric state)
     *  and resets hubs, control hub and scratchpad. Only valid after
     *  the event queue was reset. */
    void reset();

  private:
    ClockDomain &fastClk_;
    std::string name_;
    AdapterParams params_;
    Mesh &mesh_;
    ClockDomain &fpgaClk_;
    Fabric fabric_;
    Scratchpad spad_;
    std::vector<std::unique_ptr<MemoryHub>> hubs_;
    std::unique_ptr<ControlHub> ctrl_;
    std::unique_ptr<FpgaRegFile> regFile_;
    std::vector<std::unique_ptr<SoftCache>> softCaches_;
    std::vector<PrivateCache *> proxies_;
    LatencyTrace *defaultTrace_ = nullptr;
};

} // namespace duet

#endif // DUET_CORE_ADAPTER_HH
