/**
 * @file
 * The Duet Memory Hub (paper Sec. II-B).
 *
 * A Memory Hub transduces between the eFPGA's simple memory interface
 * (FpgaMemReq/FpgaMemResp over async FIFOs) and the Proxy Cache. It
 * contains, all in hardware: an exception handler (parity checks on eFPGA
 * outputs; deactivation on error), feature switches (active / forward
 * invalidations / TLB enable / atomics enable, all MMIO-configurable), and
 * a TLB for untrusted fine-grained accelerators.
 *
 * The Proxy Cache itself is a PrivateCache instance: Dolly "implements the
 * Proxy Cache by adding a coherent memory interface to the unmodified
 * P-Mesh L2 cache" (Sec. IV), and so do we. The hub stores each line's VPN
 * in the cache line's metadata so invalidations can be reverse-translated
 * into the virtually-tagged soft cache (Sec. II-D); forwarded invalidations
 * are never acknowledged by the eFPGA (Sec. II-C).
 */

#ifndef DUET_CORE_MEMORY_HUB_HH
#define DUET_CORE_MEMORY_HUB_HH

#include <deque>
#include <functional>
#include <string>

#include "cache/private_cache.hh"
#include "core/tlb.hh"
#include "fpga/async_fifo.hh"
#include "fpga/mem_if.hh"
#include "sim/stats.hh"

namespace duet
{

/** Memory Hub configuration. */
struct MemoryHubParams
{
    bool tlbEnabled = false;    ///< translate accelerator addresses
    unsigned tlbEntries = 16;
    bool forwardInvs = false;   ///< a soft cache is attached
    bool atomicsEnabled = false;
    unsigned reqFifoDepth = 8;
    unsigned respFifoDepth = 32;
    /** Synchronizer stages of the req FIFO (0 when the hub/proxy runs in
     *  the same clock domain as the eFPGA — the FPSoC baseline). */
    unsigned reqSyncStages = 2;
    unsigned respSyncStages = 2;
    Cycles hubLatency = 1; ///< hub-side processing cycles per request
};

/** Error codes latched by the hub's exception handler. */
enum class HubError : std::uint8_t
{
    None = 0,
    Parity = 1,       ///< corrupted eFPGA output detected
    Deactivated = 2,  ///< request arrived while deactivated
    TlbKilled = 3,    ///< kernel killed the accelerator on a bad access
};

/** One Memory Hub instance. */
class MemoryHub
{
  public:
    /**
     * @param hub_clk  the clock the hub+proxy logic runs in (the fast
     *                 domain for Duet; the eFPGA domain in FPSoC mode)
     * @param fpga_clk the eFPGA clock (reader side of the resp FIFO)
     * @param proxy    the Proxy Cache (a PrivateCache on this tile)
     */
    MemoryHub(ClockDomain &hub_clk, ClockDomain &fpga_clk, std::string name,
              const MemoryHubParams &params, PrivateCache &proxy);

    /** The eFPGA-side request FIFO (soft cache binds to this). */
    AsyncFifo<FpgaMemReq> &reqFifo() { return reqFifo_; }
    /** The eFPGA-side response FIFO (drain = SoftCache::receive). */
    AsyncFifo<FpgaMemResp> &respFifo() { return respFifo_; }

    // ---------------- feature switches (MMIO-driven) ----------------
    void setActive(bool a) { active_ = a; }
    bool active() const { return active_; }
    void setForwardInvs(bool f) { params_.forwardInvs = f; }
    void setTlbEnabled(bool t) { params_.tlbEnabled = t; }
    void setAtomicsEnabled(bool a) { params_.atomicsEnabled = a; }

    // ---------------- TLB management (kernel path) ------------------
    /** Install a translation; retries any requests parked on the fault. */
    void tlbInsert(Addr vpn, Addr ppn);
    void tlbInvalidate(Addr vpn) { tlb_.invalidate(vpn); }
    void tlbFlush() { tlb_.flush(); }
    /** Kill requests parked on @p vpn (invalid access; error latched). */
    void tlbKill(Addr vpn);
    /** Handler invoked on a TLB miss (system wires this to a core IRQ). */
    void setFaultHandler(std::function<void(Addr vpn)> h)
    {
        faultHandler_ = std::move(h);
    }
    Tlb &tlb() { return tlb_; }

    // ---------------- exception handler -----------------------------
    HubError errorCode() const { return error_; }
    /** Invoked when the exception handler latches an error (the adapter
     *  uses this to deactivate all hubs in the same adapter). */
    void setErrorHook(std::function<void(HubError)> h)
    {
        errorHook_ = std::move(h);
    }
    void
    clearError()
    {
        error_ = HubError::None;
        active_ = true;
    }

    const std::string &name() const { return name_; }
    PrivateCache &proxy() { return proxy_; }

    Counter reqsAccepted, reqsDropped, invsForwarded, tlbFaults, parityErrors;

    void registerStats(StatRegistry &reg) const;

    /** Rewind to construction state — including the MMIO-driven feature
     *  switches — keeping ctor wiring (fault handler, error hook, req
     *  FIFO drain) in place (scenario warm-start). */
    void reset();

  private:
    /** Drain side of the request FIFO: runs in the hub clock domain. */
    void handleReq(FpgaMemReq &&req);

    /** Translate and issue to the Proxy Cache. */
    void issue(const FpgaMemReq &req, Addr pa);

    /** Queue a response towards the eFPGA (in-order, backpressured). */
    void pushResp(FpgaMemResp resp);
    void pumpResp();

    void latchError(HubError e);

    ClockDomain &hubClk_;
    std::string name_;
    MemoryHubParams params_;
    /// Ctor-time params snapshot: reset() rewinds the MMIO-mutable
    /// switches (forwardInvs/tlbEnabled/atomicsEnabled) to these.
    MemoryHubParams initialParams_;
    PrivateCache &proxy_;
    AsyncFifo<FpgaMemReq> reqFifo_;
    AsyncFifo<FpgaMemResp> respFifo_;
    Tlb tlb_;
    std::function<void(Addr)> faultHandler_;
    std::deque<FpgaMemReq> faulted_; ///< parked on TLB misses
    std::deque<FpgaMemResp> respQ_;  ///< waiting for resp FIFO space
    bool respPumping_ = false;
    bool active_ = true;
    HubError error_ = HubError::None;
    std::function<void(HubError)> errorHook_;
};

} // namespace duet

#endif // DUET_CORE_MEMORY_HUB_HH
