#include "core/adapter.hh"

#include "sim/logging.hh"

namespace duet
{

DuetAdapter::DuetAdapter(ClockDomain &fast_clk, ClockDomain &fpga_clk,
                         std::string name, const AdapterParams &params,
                         Mesh &mesh, std::vector<PrivateCache *> proxies,
                         NodeId ctrl_node, Addr mmio_base)
    : fastClk_(fast_clk), name_(std::move(name)), params_(params),
      mesh_(mesh), fpgaClk_(fpga_clk), fabric_(params.fabric),
      spad_(params.scratchpadBytes), proxies_(std::move(proxies))
{
    simAssert(proxies_.size() == params_.numMemoryHubs,
              name_ + ": one proxy cache per memory hub required");

    for (unsigned i = 0; i < params_.numMemoryHubs; ++i) {
        MemoryHubParams hp = params_.hub;
        if (params_.fpsocMode) {
            // The FPGA-side cache already lives in the slow domain; no
            // CDC between the accelerator and the hub (the CDC moved to
            // the cache's NoC ports, wired by the system builder).
            hp.reqSyncStages = 0;
            hp.respSyncStages = 0;
        }
        // The hub logic runs in the proxy's clock domain.
        hubs_.push_back(std::make_unique<MemoryHub>(
            proxies_[i]->clock(), fpgaClk_,
            name_ + ".hub" + std::to_string(i), hp, *proxies_[i]));
    }

    ControlHubParams cp = params_.ctrl;
    if (params_.fpsocMode) {
        cp.shadowEnabled = false;
        // Register accesses traverse the FPSoC's centralized interconnect
        // and AXI bridge before reaching the fabric (Fig. 1b).
        cp.syncStages = 4;
    }
    ctrl_ = std::make_unique<ControlHub>(fast_clk, fpgaClk_,
                                         name_ + ".ctrl", cp, fabric_,
                                         mesh_, ctrl_node, mmio_base);
    std::vector<MemoryHub *> raw;
    for (auto &h : hubs_)
        raw.push_back(h.get());
    ctrl_->setMemoryHubs(std::move(raw));

    // A latched error in any hub deactivates every hub in the adapter
    // (Sec. II-B: prevents accelerator bugs from halting the system).
    for (auto &h : hubs_) {
        h->setErrorHook([this](HubError) {
            for (auto &other : hubs_)
                other->setActive(false);
        });
    }
}

void
DuetAdapter::registerStats(StatRegistry &reg) const
{
    ctrl_->registerStats(reg);
    for (const auto &h : hubs_)
        h->registerStats(reg);
}

Bitstream
DuetAdapter::makeBitstream(const AccelImage &img) const
{
    Bitstream b;
    b.accelName = img.name;
    b.used = img.resources;
    // The scratchpad is BRAM like any other: its bits count against
    // Fabric::capacity(), so an image only fits together with the
    // (possibly layout-grown) non-coherent memory it runs against.
    b.used.bramBits += spad_.bramBits();
    b.fmaxMHz = img.fmaxMHz;
    b.bytes.resize(fabric_.bitstreamBytes());
    // Deterministic, content-dependent payload.
    std::uint8_t x = static_cast<std::uint8_t>(img.name.size() * 37 + 1);
    for (auto &byte : b.bytes) {
        x = static_cast<std::uint8_t>(x * 167 + 13);
        byte = x;
    }
    b.seal();
    return b;
}

void
DuetAdapter::install(const AccelImage &img,
                     std::function<void(bool)> on_done)
{
    // Feature-switch discipline: memory hubs must not accept eFPGA traffic
    // while the fabric reconfigures (Sec. II-B).
    for (auto &h : hubs_)
        h->setActive(false);

    Bitstream image = makeBitstream(img);
    ctrl_->program(image, [this, img, on_done](bool ok) {
        if (!ok) {
            on_done(false);
            return;
        }
        // eFPGA clock from the synthesized Fmax (capped by request).
        fpgaClk_.setFrequencyMHz(img.fmaxMHz);

        // Build the slow-domain register file and wire the control FIFOs.
        regFile_ = std::make_unique<FpgaRegFile>(
            fpgaClk_, name_ + ".regs", img.regLayout);
        regFile_->bindOut(&ctrl_->fromFpga());
        ctrl_->toFpga().setDrain(
            [rf = regFile_.get()](CtrlMsg &&m) { rf->receive(std::move(m)); });
        ctrl_->attachRegFile(regFile_.get());

        // Build one soft cache (or pass-through port) per memory hub.
        softCaches_.clear();
        std::uint64_t fwd_mask = 0, tlb_mask = 0, amo_mask = 0;
        for (unsigned i = 0; i < numHubs(); ++i) {
            SoftCacheParams scp = i < img.softCaches.size()
                                      ? img.softCaches[i]
                                      : SoftCacheParams{.enabled = false};
            auto sc = std::make_unique<SoftCache>(
                fpgaClk_, name_ + ".softCache" + std::to_string(i), scp,
                proxies_[i]->memoryRef());
            sc->setDefaultTrace(defaultTrace_);
            sc->bindOut(&hubs_[i]->reqFifo());
            hubs_[i]->respFifo().setDrain(
                [p = sc.get()](FpgaMemResp &&r) { p->receive(std::move(r)); });
            if (scp.enabled)
                fwd_mask |= 1ull << i;
            if (img.useTlb)
                tlb_mask |= 1ull << i;
            if (img.atomics)
                amo_mask |= 1ull << i;
            softCaches_.push_back(std::move(sc));
        }
        for (unsigned i = 0; i < numHubs(); ++i) {
            hubs_[i]->setForwardInvs(fwd_mask & (1ull << i));
            hubs_[i]->setTlbEnabled(tlb_mask & (1ull << i));
            hubs_[i]->setAtomicsEnabled(amo_mask & (1ull << i));
            hubs_[i]->setActive(true);
        }

        // Start the accelerator logic.
        if (img.start) {
            std::vector<SoftCache *> ports;
            for (auto &sc : softCaches_)
                ports.push_back(sc.get());
            FpgaContext ctx{fpgaClk_, *regFile_, std::move(ports), spad_,
                            *this};
            img.start(ctx);
        }
        on_done(true);
    });
}

bool
DuetAdapter::installBlocking(const AccelImage &img)
{
    bool ok = false, done = false;
    install(img, [&](bool success) {
        ok = success;
        done = true;
    });
    EventQueue &eq = fastClk_.eventQueue();
    while (!done && !eq.empty())
        eq.run(eq.now() + kTicksPerUs);
    simAssert(done, name_ + ": install never completed");
    return ok;
}

void
DuetAdapter::injectParityError(unsigned i)
{
    FpgaMemReq bad;
    bad.op = FpgaMemOp::Load;
    bad.addr = 0;
    bad.parityOk = false;
    hubs_.at(i)->reqFifo().push(bad);
}

void
DuetAdapter::reset()
{
    // The control hub first: it drops its regFile_ pointer before the
    // register file itself is destroyed below.
    ctrl_->reset();
    for (auto &h : hubs_)
        h->reset();
    fabric_.reset();
    spad_.clear();
    spad_.reads.reset();
    spad_.writes.reset();
    // Uninstall the soft accelerator. The FIFO drains these held
    // (toFpga_ -> regFile, respFifo_ -> softCache) now dangle, but
    // nothing pushes into those FIFOs until the next install() re-sets
    // them: the proxies serve only hub traffic and the cores are idle
    // until start().
    regFile_.reset();
    softCaches_.clear();
}

} // namespace duet
