/**
 * @file
 * The in-order core model (Ariane stand-in).
 *
 * Workloads are C++20 coroutines that co_await memory operations and
 * explicit compute delays. Loads and stores are blocking (in-order,
 * single-issue core); stores write through the L1 into the private L2;
 * MMIOs are strictly ordered (one outstanding per core) and travel the NoC
 * to a Control Hub. Instruction-level work is modeled by compute(), whose
 * cycle counts per benchmark are documented in workload/cost_model.hh.
 */

#ifndef DUET_CPU_CORE_HH
#define DUET_CPU_CORE_HH

#include <functional>
#include <string>
#include <unordered_map>

#include "cache/l1_cache.hh"
#include "cache/private_cache.hh"
#include "noc/mesh.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace duet
{

/** An in-order, single-issue core with a private L1D and L2. */
class Core
{
  public:
    /**
     * @param clk        the fast clock domain
     * @param name       stats name
     * @param tile       tile index (NoC coordinates)
     * @param l2         the tile's private L2
     * @param mesh       the NoC, for MMIO traffic
     * @param mmio_route maps an MMIO address to the owning Control Hub
     */
    /** Maps an MMIO address to the owning Control Hub endpoint. */
    using MmioRoute = InlineFunction<NodeId(Addr), 16>;

    Core(ClockDomain &clk, std::string name, unsigned tile,
         PrivateCache &l2, Mesh &mesh, MmioRoute mmio_route);

    /** Begin executing @p main at tick 0 (first clock edge). */
    void start(std::function<CoTask<void>(Core &)> main);

    /** True once the started workload ran to completion. */
    bool finished() const { return finished_; }
    /** Tick at which the workload completed. */
    Tick finishTick() const { return finishTick_; }

    // ------------------------------------------------------------------
    // Workload API (co_await these from a workload coroutine).
    // ------------------------------------------------------------------

    /** Load @p size bytes; blocking. */
    Future<std::uint64_t> load(Addr a, unsigned size = 8,
                               LatencyTrace *trace = nullptr);

    /** Store @p size bytes; blocking (write-through L1). */
    Future<void> store(Addr a, std::uint64_t v, unsigned size = 8,
                       LatencyTrace *trace = nullptr);

    /** Atomic RMW at the directory; returns the old value. */
    Future<std::uint64_t> amo(AmoOp op, Addr a, std::uint64_t operand,
                              std::uint64_t operand2 = 0,
                              unsigned size = 8);

    /** Model @p cycles of pipeline work (ALU/FPU/branches). */
    ClockDelay compute(Cycles cycles) { return ClockDelay(clk_, cycles); }

    /** Strictly-ordered MMIO read (blocks the pipeline). */
    Future<std::uint64_t> mmioRead(Addr a, LatencyTrace *trace = nullptr);

    /** Strictly-ordered MMIO write (blocks until acknowledged). */
    Future<void> mmioWrite(Addr a, std::uint64_t v,
                           LatencyTrace *trace = nullptr);

    // ------------------------------------------------------------------

    /** Deliver an MMIO response from the NoC (wired by the system). */
    void receive(const Message &msg);

    /**
     * Fallback latency-attribution sink (`--latency-breakdown`): memory
     * and MMIO ops whose callers pass no LatencyTrace attribute into
     * this one instead, so the system can total Fig. 9-style
     * noc/fast/slow/cdc tick counts without touching every workload.
     * Attribution only — never affects timing.
     */
    void setDefaultTrace(LatencyTrace *t) { defaultTrace_ = t; }

    /** Register a software interrupt handler (e.g. the TLB-miss handler).
     *  The handler runs as a new coroutine on this core. */
    void
    setInterruptHandler(std::function<CoTask<void>(Core &, std::uint64_t)> h)
    {
        irqHandler_ = std::move(h);
    }

    /** Raise an interrupt with a cause word (e.g. the faulting VPN). */
    void raiseInterrupt(std::uint64_t cause);

    ClockDomain &clock() const { return clk_; }
    unsigned tile() const { return tile_; }
    L1Cache &l1() { return l1_; }
    PrivateCache &l2() { return l2_; }
    const std::string &name() const { return name_; }

    Counter loads, stores, amos, mmios, l1Hits, irqs;

    void registerStats(StatRegistry &reg) const;

    /** Rewind to construction state, dropping the workload-installed
     *  interrupt handler (scenario warm-start). The owning L2 is reset
     *  separately by the system. */
    void
    reset()
    {
        l1_.reset();
        irqHandler_ = nullptr;
        pendingMmio_.clear();
        nextTxn_ = 1;
        finished_ = false;
        finishTick_ = 0;
        loads.reset();
        stores.reset();
        amos.reset();
        mmios.reset();
        l1Hits.reset();
        irqs.reset();
    }

  private:
    ClockDomain &clk_;
    std::string name_;
    unsigned tile_;
    L1Cache l1_;
    PrivateCache &l2_;
    Mesh &mesh_;
    MmioRoute mmioRoute_;
    std::function<CoTask<void>(Core &, std::uint64_t)> irqHandler_;
    std::unordered_map<std::uint32_t, Future<std::uint64_t>::Setter>
        pendingMmio_;
    std::uint32_t nextTxn_ = 1;
    bool finished_ = false;
    Tick finishTick_ = 0;
    LatencyTrace *defaultTrace_ = nullptr;
};

} // namespace duet

#endif // DUET_CPU_CORE_HH
