/**
 * @file
 * The in-order core model (Ariane stand-in).
 *
 * Workloads are C++20 coroutines that co_await memory operations and
 * explicit compute delays. Loads and stores are blocking (in-order,
 * single-issue core); stores write through the L1 into the private L2;
 * MMIOs are strictly ordered (one outstanding per core) and travel the NoC
 * to a Control Hub. Instruction-level work is modeled by compute(), whose
 * cycle counts per benchmark are documented in workload/cost_model.hh.
 */

#ifndef DUET_CPU_CORE_HH
#define DUET_CPU_CORE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cache/l1_cache.hh"
#include "cache/private_cache.hh"
#include "noc/mesh.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace duet
{

/** An in-order, single-issue core with a private L1D and L2. */
class Core
{
  public:
    /**
     * @param clk        the fast clock domain
     * @param name       stats name
     * @param tile       tile index (NoC coordinates)
     * @param l2         the tile's private L2
     * @param mesh       the NoC, for MMIO traffic
     * @param mmio_route maps an MMIO address to the owning Control Hub
     */
    /** Maps an MMIO address to the owning Control Hub endpoint. */
    using MmioRoute = InlineFunction<NodeId(Addr), 16>;

    Core(ClockDomain &clk, std::string name, unsigned tile,
         PrivateCache &l2, Mesh &mesh, MmioRoute mmio_route);

    /** Begin executing @p main at tick 0 (first clock edge). */
    void start(std::function<CoTask<void>(Core &)> main);

    /** True once the started workload ran to completion. */
    bool finished() const { return finished_; }
    /** Tick at which the workload completed. */
    Tick finishTick() const { return finishTick_; }

    // ------------------------------------------------------------------
    // Workload API (co_await these from a workload coroutine).
    //
    // Each operation is an intrusive awaitable: the constructor issues
    // the access eagerly, and the pending state (value, waiter, flag)
    // lives inside the op object itself. The factory methods return by
    // prvalue, so guaranteed copy elision constructs the op directly in
    // the caller's co_await temporary — inside the coroutine frame —
    // giving the completion callback a stable `this` and making the
    // common case zero-allocation (no shared state, no refcount). Each
    // op must be awaited exactly once, before its frame dies; the
    // in-order core model awaits immediately, which satisfies both.
    // ------------------------------------------------------------------

    /** A blocking load of up to 8 bytes; resolves to the value read. */
    class [[nodiscard]] LoadOp : public PendingValue<std::uint64_t>
    {
      public:
        LoadOp(Core &c, Addr a, unsigned size, LatencyTrace *trace);
    };

    /** A blocking store (write-through L1); completion only. */
    class [[nodiscard]] StoreOp : public PendingVoid
    {
      public:
        StoreOp(Core &c, Addr a, std::uint64_t v, unsigned size,
                LatencyTrace *trace);
    };

    /** An atomic RMW at the directory; resolves to the old value. */
    class [[nodiscard]] AtomicOp : public PendingValue<std::uint64_t>
    {
      public:
        AtomicOp(Core &c, AmoOp op, Addr a, std::uint64_t operand,
                 std::uint64_t operand2, unsigned size);
    };

    /** A strictly-ordered MMIO read; resolves to the value read. */
    class [[nodiscard]] MmioReadOp : public PendingValue<std::uint64_t>
    {
      public:
        MmioReadOp(Core &c, Addr a, LatencyTrace *trace);
    };

    /**
     * A strictly-ordered MMIO write; completes when the hub's ack
     * returns. The ack carries a value nobody wants, so await_resume()
     * shadows the base to discard it — the value-to-void adaptation is
     * a name lookup, not a helper coroutine.
     */
    class [[nodiscard]] MmioWriteOp : public PendingValue<std::uint64_t>
    {
      public:
        MmioWriteOp(Core &c, Addr a, std::uint64_t v, LatencyTrace *trace);

        void await_resume() const noexcept {}
    };

    /** Load @p size bytes; blocking. */
    LoadOp
    load(Addr a, unsigned size = 8, LatencyTrace *trace = nullptr)
    {
        return LoadOp(*this, a, size, trace);
    }

    /** Store @p size bytes; blocking (write-through L1). */
    StoreOp
    store(Addr a, std::uint64_t v, unsigned size = 8,
          LatencyTrace *trace = nullptr)
    {
        return StoreOp(*this, a, v, size, trace);
    }

    /** Atomic RMW at the directory; returns the old value. */
    AtomicOp
    amo(AmoOp op, Addr a, std::uint64_t operand, std::uint64_t operand2 = 0,
        unsigned size = 8)
    {
        return AtomicOp(*this, op, a, operand, operand2, size);
    }

    /** Model @p cycles of pipeline work (ALU/FPU/branches). */
    ClockDelay compute(Cycles cycles) { return ClockDelay(clk_, cycles); }

    /** Strictly-ordered MMIO read (blocks the pipeline). */
    MmioReadOp
    mmioRead(Addr a, LatencyTrace *trace = nullptr)
    {
        return MmioReadOp(*this, a, trace);
    }

    /** Strictly-ordered MMIO write (blocks until acknowledged). */
    MmioWriteOp
    mmioWrite(Addr a, std::uint64_t v, LatencyTrace *trace = nullptr)
    {
        return MmioWriteOp(*this, a, v, trace);
    }

    // ------------------------------------------------------------------

    /** Deliver an MMIO response from the NoC (wired by the system). */
    void receive(const Message &msg);

    /**
     * Fallback latency-attribution sink (`--latency-breakdown`): memory
     * and MMIO ops whose callers pass no LatencyTrace attribute into
     * this one instead, so the system can total Fig. 9-style
     * noc/fast/slow/cdc tick counts without touching every workload.
     * Attribution only — never affects timing.
     */
    void setDefaultTrace(LatencyTrace *t) { defaultTrace_ = t; }

    /** Register a software interrupt handler (e.g. the TLB-miss handler).
     *  The handler runs as a new coroutine on this core. */
    void
    setInterruptHandler(std::function<CoTask<void>(Core &, std::uint64_t)> h)
    {
        irqHandler_ = std::move(h);
    }

    /** Raise an interrupt with a cause word (e.g. the faulting VPN). */
    void raiseInterrupt(std::uint64_t cause);

    ClockDomain &clock() const { return clk_; }
    unsigned tile() const { return tile_; }
    L1Cache &l1() { return l1_; }
    PrivateCache &l2() { return l2_; }
    const std::string &name() const { return name_; }

    Counter loads, stores, amos, mmios, l1Hits, irqs;

    void registerStats(StatRegistry &reg) const;

    /** Rewind to construction state, dropping the workload-installed
     *  interrupt handler (scenario warm-start). The owning L2 is reset
     *  separately by the system. */
    void
    reset()
    {
        l1_.reset();
        irqHandler_ = nullptr;
        pendingMmio_.clear();
        nextTxn_ = 1;
        finished_ = false;
        finishTick_ = 0;
        loads.reset();
        stores.reset();
        amos.reset();
        mmios.reset();
        l1Hits.reset();
        irqs.reset();
    }

  private:
    /**
     * Pending-MMIO table: txnId -> in-flight MMIO op. MMIOs are
     * strictly ordered (at most one outstanding per core, a handful
     * system-wide), so a tiny open-addressed table with linear probing
     * beats unordered_map's per-node allocations. Key 0 is the empty
     * sentinel (txn ids start at 1); take() backward-shifts the probe
     * chain closed, so there are no tombstones to accumulate.
     */
    class MmioTable
    {
      public:
        MmioTable() : slots_(kInitSlots) {}

        void
        insert(std::uint32_t id, PendingValue<std::uint64_t> *op)
        {
            if ((size_ + 1) * 2 > slots_.size())
                grow();
            const std::size_t mask = slots_.size() - 1;
            std::size_t i = id & mask;
            while (slots_[i].key != 0) {
                DUET_DCHECK(slots_[i].key != id, "duplicate MMIO txn id");
                i = (i + 1) & mask;
            }
            slots_[i] = Entry{id, op};
            ++size_;
        }

        /** Remove and return the op for @p id; nullptr if absent. */
        PendingValue<std::uint64_t> *
        take(std::uint32_t id)
        {
            const std::size_t mask = slots_.size() - 1;
            std::size_t i = id & mask;
            while (slots_[i].key != id) {
                if (slots_[i].key == 0)
                    return nullptr;
                i = (i + 1) & mask;
            }
            PendingValue<std::uint64_t> *op = slots_[i].op;
            // Close the probe chain by shifting later members back into
            // the hole whenever their home slot permits it.
            std::size_t hole = i;
            for (std::size_t j = (i + 1) & mask; slots_[j].key != 0;
                 j = (j + 1) & mask) {
                const std::size_t home = slots_[j].key & mask;
                if (((j - home) & mask) >= ((j - hole) & mask)) {
                    slots_[hole] = slots_[j];
                    hole = j;
                }
            }
            slots_[hole] = Entry{};
            --size_;
            return op;
        }

        void
        clear()
        {
            std::fill(slots_.begin(), slots_.end(), Entry{});
            size_ = 0;
        }

        std::size_t size() const { return size_; }

      private:
        /// Starting capacity; always a power of two.
        static constexpr std::size_t kInitSlots = 16;

        struct Entry
        {
            std::uint32_t key = 0;
            PendingValue<std::uint64_t> *op = nullptr;
        };

        void
        grow()
        {
            std::vector<Entry> old = std::move(slots_);
            slots_.assign(old.size() * 2, Entry{});
            size_ = 0;
            for (const Entry &e : old)
                if (e.key != 0)
                    insert(e.key, e.op);
        }

        std::vector<Entry> slots_;
        std::size_t size_ = 0;
    };

    ClockDomain &clk_;
    std::string name_;
    unsigned tile_;
    L1Cache l1_;
    PrivateCache &l2_;
    Mesh &mesh_;
    MmioRoute mmioRoute_;
    std::function<CoTask<void>(Core &, std::uint64_t)> irqHandler_;
    MmioTable pendingMmio_;
    std::uint32_t nextTxn_ = 1;
    bool finished_ = false;
    Tick finishTick_ = 0;
    LatencyTrace *defaultTrace_ = nullptr;
};

} // namespace duet

#endif // DUET_CPU_CORE_HH
