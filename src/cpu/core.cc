#include "cpu/core.hh"

#include "sim/logging.hh"

namespace duet
{

Core::Core(ClockDomain &clk, std::string name, unsigned tile,
           PrivateCache &l2, Mesh &mesh, MmioRoute mmio_route)
    : clk_(clk), name_(std::move(name)), tile_(tile), l2_(l2), mesh_(mesh),
      mmioRoute_(std::move(mmio_route))
{
    // Keep the L1 inclusive: lines leaving the L2 leave the L1 too.
    l2_.setInvalidateHook(
        [this](Addr a, std::uint64_t) { l1_.invalidateLine(a); });
}

void
Core::registerStats(StatRegistry &reg) const
{
    reg.registerCounter(name_ + ".loads", &loads);
    reg.registerCounter(name_ + ".stores", &stores);
    reg.registerCounter(name_ + ".amos", &amos);
    reg.registerCounter(name_ + ".mmios", &mmios);
    reg.registerCounter(name_ + ".l1Hits", &l1Hits);
    reg.registerCounter(name_ + ".irqs", &irqs);
}

void
Core::start(std::function<CoTask<void>(Core &)> main)
{
    clk_.scheduleAtEdge(0, [this, main = std::move(main)] {
        spawn([](Core &core,
                 std::function<CoTask<void>(Core &)> m) -> CoTask<void> {
            co_await m(core);
            core.finished_ = true;
            core.finishTick_ = core.clk_.eventQueue().now();
        }(*this, std::move(main)));
    });
}

Core::LoadOp::LoadOp(Core &c, Addr a, unsigned size, LatencyTrace *trace)
{
    c.loads.inc();
    if (!trace)
        trace = c.defaultTrace_;
    if (c.l1_.loadHit(a)) {
        c.l1Hits.inc();
        // 1-cycle L1 hit; the value still comes from functional memory,
        // read when the event fires so same-tick earlier stores are
        // visible, exactly as before.
        c.clk_.scheduleAtEdge(c.l1_.params().hitLatency,
                              [this, cp = &c, a, size] {
                                  obs::profClaim("cpu");
                                  fulfill(cp->l2_.memoryRef().read(a, size));
                              });
        return;
    }
    CacheReq r;
    r.kind = CacheReq::Kind::Load;
    r.addr = a;
    r.size = size;
    r.trace = trace;
    r.done = [this, cp = &c, a](std::uint64_t v) {
        cp->l1_.fill(a);
        fulfill(v);
    };
    c.l2_.request(std::move(r));
}

Core::StoreOp::StoreOp(Core &c, Addr a, std::uint64_t v, unsigned size,
                       LatencyTrace *trace)
{
    c.stores.inc();
    if (!trace)
        trace = c.defaultTrace_;
    CacheReq r;
    r.kind = CacheReq::Kind::Store;
    r.addr = a;
    r.size = size;
    r.wdata = v;
    r.trace = trace;
    r.done = [this](std::uint64_t) { fulfill(); };
    c.l2_.request(std::move(r));
}

Core::AtomicOp::AtomicOp(Core &c, AmoOp op, Addr a, std::uint64_t operand,
                         std::uint64_t operand2, unsigned size)
{
    c.amos.inc();
    CacheReq r;
    r.kind = CacheReq::Kind::Amo;
    r.amoOp = op;
    r.addr = a;
    r.size = size;
    r.wdata = operand;
    r.wdata2 = operand2;
    r.done = [this](std::uint64_t old) { fulfill(old); };
    c.l2_.request(std::move(r));
}

Core::MmioReadOp::MmioReadOp(Core &c, Addr a, LatencyTrace *trace)
{
    c.mmios.inc();
    if (!trace)
        trace = c.defaultTrace_;
    const std::uint32_t id = c.nextTxn_++;
    c.pendingMmio_.insert(id, this);
    Message m;
    m.type = MsgType::MmioRead;
    m.src = {static_cast<std::uint16_t>(c.tile_), TilePort::Core};
    m.dst = c.mmioRoute_(a);
    m.addr = a;
    m.txnId = id;
    m.trace = trace;
    c.mesh_.inject(m);
}

Core::MmioWriteOp::MmioWriteOp(Core &c, Addr a, std::uint64_t v,
                               LatencyTrace *trace)
{
    c.mmios.inc();
    if (!trace)
        trace = c.defaultTrace_;
    const std::uint32_t id = c.nextTxn_++;
    c.pendingMmio_.insert(id, this);
    Message m;
    m.type = MsgType::MmioWrite;
    m.src = {static_cast<std::uint16_t>(c.tile_), TilePort::Core};
    m.dst = c.mmioRoute_(a);
    m.addr = a;
    m.value = v;
    m.txnId = id;
    m.trace = trace;
    c.mesh_.inject(m);
}

void
Core::receive(const Message &msg)
{
    simAssert(msg.type == MsgType::MmioResp,
              name_ + ": unexpected NoC message at core");
    PendingValue<std::uint64_t> *op = pendingMmio_.take(msg.txnId);
    simAssert(op != nullptr, name_ + ": stray MMIO response");
    op->fulfill(msg.value);
}

void
Core::raiseInterrupt(std::uint64_t cause)
{
    irqs.inc();
    simAssert(static_cast<bool>(irqHandler_),
              name_ + ": interrupt with no handler installed");
    // The handler runs as an independent coroutine; a real kernel would
    // preempt the user thread, but for our workloads the handler only
    // competes for the same memory ports, which the model serializes.
    clk_.scheduleAtEdge(1, [this, cause] {
        spawn(irqHandler_(*this, cause));
    });
}

} // namespace duet
