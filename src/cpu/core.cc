#include "cpu/core.hh"

#include "sim/logging.hh"

namespace duet
{

Core::Core(ClockDomain &clk, std::string name, unsigned tile,
           PrivateCache &l2, Mesh &mesh, MmioRoute mmio_route)
    : clk_(clk), name_(std::move(name)), tile_(tile), l2_(l2), mesh_(mesh),
      mmioRoute_(std::move(mmio_route))
{
    // Keep the L1 inclusive: lines leaving the L2 leave the L1 too.
    l2_.setInvalidateHook(
        [this](Addr a, std::uint64_t) { l1_.invalidateLine(a); });
}

void
Core::registerStats(StatRegistry &reg) const
{
    reg.registerCounter(name_ + ".loads", &loads);
    reg.registerCounter(name_ + ".stores", &stores);
    reg.registerCounter(name_ + ".amos", &amos);
    reg.registerCounter(name_ + ".mmios", &mmios);
    reg.registerCounter(name_ + ".l1Hits", &l1Hits);
    reg.registerCounter(name_ + ".irqs", &irqs);
}

void
Core::start(std::function<CoTask<void>(Core &)> main)
{
    clk_.scheduleAtEdge(0, [this, main = std::move(main)] {
        spawn([](Core &core,
                 std::function<CoTask<void>(Core &)> m) -> CoTask<void> {
            co_await m(core);
            core.finished_ = true;
            core.finishTick_ = core.clk_.eventQueue().now();
        }(*this, std::move(main)));
    });
}

Future<std::uint64_t>
Core::load(Addr a, unsigned size, LatencyTrace *trace)
{
    loads.inc();
    if (!trace)
        trace = defaultTrace_;
    Future<std::uint64_t> fut;
    auto set = fut.setter();
    if (l1_.loadHit(a)) {
        l1Hits.inc();
        // 1-cycle L1 hit; the value still comes from functional memory.
        clk_.scheduleAtEdge(l1_.params().hitLatency, [this, a, size, set] {
            obs::profClaim("cpu");
            set.set(l2_.memoryRef().read(a, size));
        });
        return fut;
    }
    CacheReq r;
    r.kind = CacheReq::Kind::Load;
    r.addr = a;
    r.size = size;
    r.trace = trace;
    r.done = [this, a, set](std::uint64_t v) {
        l1_.fill(a);
        set.set(v);
    };
    l2_.request(std::move(r));
    return fut;
}

Future<void>
Core::store(Addr a, std::uint64_t v, unsigned size, LatencyTrace *trace)
{
    stores.inc();
    if (!trace)
        trace = defaultTrace_;
    Future<void> fut;
    auto set = fut.setter();
    CacheReq r;
    r.kind = CacheReq::Kind::Store;
    r.addr = a;
    r.size = size;
    r.wdata = v;
    r.trace = trace;
    r.done = [set](std::uint64_t) { set.set(); };
    l2_.request(std::move(r));
    return fut;
}

Future<std::uint64_t>
Core::amo(AmoOp op, Addr a, std::uint64_t operand, std::uint64_t operand2,
          unsigned size)
{
    amos.inc();
    Future<std::uint64_t> fut;
    auto set = fut.setter();
    CacheReq r;
    r.kind = CacheReq::Kind::Amo;
    r.amoOp = op;
    r.addr = a;
    r.size = size;
    r.wdata = operand;
    r.wdata2 = operand2;
    r.done = [set](std::uint64_t old) { set.set(old); };
    l2_.request(std::move(r));
    return fut;
}

Future<std::uint64_t>
Core::mmioRead(Addr a, LatencyTrace *trace)
{
    mmios.inc();
    if (!trace)
        trace = defaultTrace_;
    Future<std::uint64_t> fut;
    std::uint32_t id = nextTxn_++;
    pendingMmio_.emplace(id, fut.setter());
    Message m;
    m.type = MsgType::MmioRead;
    m.src = {static_cast<std::uint16_t>(tile_), TilePort::Core};
    m.dst = mmioRoute_(a);
    m.addr = a;
    m.txnId = id;
    m.trace = trace;
    mesh_.inject(m);
    return fut;
}

Future<void>
Core::mmioWrite(Addr a, std::uint64_t v, LatencyTrace *trace)
{
    mmios.inc();
    if (!trace)
        trace = defaultTrace_;
    Future<std::uint64_t> raw;
    std::uint32_t id = nextTxn_++;
    pendingMmio_.emplace(id, raw.setter());
    Message m;
    m.type = MsgType::MmioWrite;
    m.src = {static_cast<std::uint16_t>(tile_), TilePort::Core};
    m.dst = mmioRoute_(a);
    m.addr = a;
    m.value = v;
    m.txnId = id;
    m.trace = trace;
    mesh_.inject(m);

    // Adapt Future<uint64_t> (the ack) to Future<void> for the caller.
    Future<void> fut;
    auto set = fut.setter();
    spawn([](Future<std::uint64_t> raw,
             Future<void>::Setter set) -> CoTask<void> {
        co_await raw;
        set.set();
    }(raw, set));
    return fut;
}

void
Core::receive(const Message &msg)
{
    simAssert(msg.type == MsgType::MmioResp,
              name_ + ": unexpected NoC message at core");
    auto it = pendingMmio_.find(msg.txnId);
    simAssert(it != pendingMmio_.end(), name_ + ": stray MMIO response");
    auto set = it->second;
    pendingMmio_.erase(it);
    set.set(msg.value);
}

void
Core::raiseInterrupt(std::uint64_t cause)
{
    irqs.inc();
    simAssert(static_cast<bool>(irqHandler_),
              name_ + ": interrupt with no handler installed");
    // The handler runs as an independent coroutine; a real kernel would
    // preempt the user thread, but for our workloads the handler only
    // competes for the same memory ports, which the model serializes.
    clk_.scheduleAtEdge(1, [this, cause] {
        spawn(irqHandler_(*this, cause));
    });
}

} // namespace duet
