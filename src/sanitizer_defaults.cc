/**
 * @file
 * Baked-in sanitizer runtime defaults for the DUET_SANITIZE build
 * presets. The sanitizer runtimes look these hooks up in the main
 * executable, so this TU is compiled directly into every binary
 * (duet_sim, the gtest suites, examples, benches) rather than into
 * libduet — an archive member with no referenced symbols would never be
 * pulled in, and the hooks would silently vanish.
 *
 * halt_on_error: a report is a test failure, never a warning that
 * scrolls by. detect_leaks stays on for the parent; forked sweep/serve
 * workers _exit() and therefore never run the leak checker, which keeps
 * the fork-per-job ProcessPool ASan-compatible without suppressions.
 * The ctest layer exports the same values via ENVIRONMENT properties,
 * so `ASAN_OPTIONS=... ctest` overrides still win.
 */

#ifdef DUET_SANITIZE_BUILD

extern "C" {

const char *
__asan_default_options()
{
    return "halt_on_error=1:detect_leaks=1:abort_on_error=0:"
           "detect_stack_use_after_return=1";
}

const char *
__ubsan_default_options()
{
    return "halt_on_error=1:print_stacktrace=1";
}

const char *
__lsan_default_options()
{
    return "print_suppressions=0";
}

const char *
__tsan_default_options()
{
    return "halt_on_error=1:second_deadlock_stack=1";
}

} // extern "C"

#else

// Non-sanitizer builds compile this TU to nothing; the symbol below
// only keeps -Wempty-translation-unit-style tooling quiet.
namespace duet_detail
{
[[maybe_unused]] const int kNoSanitizerDefaults = 0;
}

#endif // DUET_SANITIZE_BUILD
