#!/usr/bin/env python3
"""Simulator-specific source lint: repo rules clang-tidy cannot express.

Run over one or more source roots (default: src/ next to this script):

    python3 tools/lint_sim.py src

Rules (R1-R9):

  R1 fork-outside-executor   `fork(` may appear only in the process-pool
                             executor (src/sim/executor.cc). Everything
                             else must submit jobs through ProcessPool so
                             crash isolation, reaping and frame framing
                             stay in one place.
  R2 no-const-cast           `const_cast` is banned. Restructure the
                             owner (see EventQueue's vector heap) instead
                             of stealing mutability.
  R3 naked-new-delete        `new`/`delete` expressions are banned
                             outside the executor: simulator state is
                             RAII-owned (make_unique/vector). `= delete;`
                             declarations are fine.
  R4 unchecked-memcpy        every `memcpy(` must be preceded (within
                             {MEMCPY_WINDOW} code lines, same line
                             included) by a visible size check: a
                             DUET_ASSERT/DUET_DCHECK/simAssert, a
                             checkAccess() helper, a std::min clamp, a
                             static_assert, or an `if` on a
                             size/len/chunk/byte/capacity expression.
                             Append `// lint: checked-memcpy(<why>)` only
                             when the bound is established further away.
  R5 no-unbounded-cstring    strcpy/strcat/sprintf/vsprintf/gets are
                             banned; use bounded std::string/snprintf.
  R6 header-guard            every .hh must open with an include guard
                             named `DUET_...` (pragma once is not used in
                             this codebase).
  R7 no-std-function-hot     `std::function`/`<functional>` are banned in
                             the hot-path headers (src/sim/event_queue.hh,
                             src/sim/inline_function.hh, src/cache/*.hh,
                             src/noc/*.hh, src/system/*.hh): per-event
                             type erasure there must go through
                             InlineFunction (or the non-owning
                             FunctionRef) so callbacks stay
                             allocation-free. Cold configuration hooks in
                             other headers may still use std::function.
  R8 unguarded-trace-hot     in the hot-path headers (the R7 set plus
                             src/fpga/async_fifo.hh), calling through
                             `obs::trace()`/`obs::prof()` (or the raw
                             `g_trace`/`g_prof` pointers) without first
                             binding the pointer behind a null check is
                             banned. Emission sites must follow the
                             `if (TraceSink *ts = obs::trace())` idiom so
                             the disabled-observability hot path stays a
                             single predictable branch — and so a null
                             sink can never be dereferenced.
  R9 no-future-hot           `Future<` is banned in the per-access
                             hot-path headers (src/cpu/*.hh,
                             src/fpga/*.hh): a Future costs a refcounted
                             arena block per simulated access, so those
                             paths must use the intrusive awaitables
                             (sim/task.hh PendingValue/PendingVoid).
                             Cold decoupled rendezvous — reg-file pops,
                             doorbell handlers, src/core — may still use
                             Future.

Run `python3 tools/lint_sim.py --selftest` to exercise every rule against
built-in positive/negative fixtures (wired into ctest as lint_selftest).

Comments and string/char literals are stripped before matching, so prose
like "a new coroutine" never trips R3. Raw string literals are not
handled (none exist in this repo; add handling before introducing one).

Exit status: 0 = clean, 1 = findings (one `file:line: rule: message` per
line), 2 = usage error.
"""

import re
import sys
from pathlib import Path

MEMCPY_WINDOW = 8

# Files allowed to fork()/new: the fork-per-job executor owns process
# lifecycles (R1); the allocation layer itself — the frame arena, the
# intrusive RcPtr, and InlineFunction's oversized-capture fallback — is
# where manual new/delete lives by design (R3). Everything else stays
# RAII-only and allocates *through* these files.
FORK_ALLOWLIST = {"src/sim/executor.cc"}
NEW_ALLOWLIST = {
    "src/sim/executor.cc",
    "src/sim/arena.hh",
    "src/sim/arena.cc",
    "src/sim/inline_function.hh",
    "src/sim/task.hh",
}

# Hot-path headers where std::function (and <functional>) are banned:
# these types sit on the per-event schedule/dispatch path and must use
# InlineFunction's inline storage (or a non-owning FunctionRef) instead
# (R7). src/noc and src/system joined the set when the express path and
# warm-start put Mesh and System on the per-event dispatch path.
HOT_HEADERS_RE = re.compile(
    r"^(src/sim/event_queue\.hh|src/sim/inline_function\.hh|"
    r"src/sim/task\.hh|"
    r"src/cache/[^/]+\.hh|src/noc/[^/]+\.hh|src/system/[^/]+\.hh)$"
)

RE_FORK = re.compile(r"\bfork\s*\(")
RE_CONST_CAST = re.compile(r"\bconst_cast\b")
RE_NEW = re.compile(r"\bnew\b")
RE_DELETE = re.compile(r"\bdelete\s*(\[\s*\]\s*)?[A-Za-z_:(*]")
RE_MEMCPY = re.compile(r"\bmemcpy\s*\(")
RE_CSTRING = re.compile(r"\b(strcpy|strcat|sprintf|vsprintf|gets)\s*\(")
RE_MEMCPY_OK = re.compile(
    r"DUET_ASSERT|DUET_DCHECK|simAssert|checkAccess\s*\(|std::min|"
    r"static_assert|if\s*\(.*(size|len|chunk|byte|Byte|capacity|sizeof)"
)
RE_MEMCPY_ESCAPE = re.compile(r"lint:\s*checked-memcpy")
RE_GUARD = re.compile(r"^\s*#\s*ifndef\s+DUET_\w+")
RE_STD_FUNCTION = re.compile(r"std::function\b|#\s*include\s*<functional>")
# R8: dereferencing the observability switchboard without binding it
# behind a null check first. `obs::trace()->...` compiles but crashes
# when no sink is installed and puts an unguarded virtual-width call on
# the per-event path; the bound `if (TraceSink *ts = obs::trace())`
# idiom never matches this pattern.
RE_TRACE_DEREF = re.compile(
    r"(obs::trace\s*\(\s*\)|obs::prof\s*\(\s*\)|\bg_trace\b|\bg_prof\b)"
    r"\s*->")
# The R8 file set: the R7 hot headers plus the CDC FIFO header, which
# sits on the cross-domain per-flit path but lives in src/fpga/.
TRACE_HOT_RE = re.compile(
    HOT_HEADERS_RE.pattern[:-2] + r"|src/fpga/async_fifo\.hh)$"
)
# R9: headers whose per-access paths must use the intrusive awaitables.
# Constructing a Future there reintroduces a refcounted arena block per
# simulated memory operation.
RE_FUTURE = re.compile(r"\bFuture\s*<")
FUTURE_HOT_RE = re.compile(r"^(src/cpu/[^/]+\.hh|src/fpga/[^/]+\.hh)$")


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, and return (code_lines, comment_lines)."""
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    state = "code"  # code | line_comment | block_comment | string | char
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if ch == "\n":
            code.append("".join(cur_code))
            comments.append("".join(cur_comment))
            cur_code, cur_comment = [], []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if ch == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if ch == '"':
                state = "string"
                cur_code.append('"')
                i += 1
                continue
            if ch == "'":
                state = "char"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(ch)
            i += 1
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                i += 2
                continue
            if ch == quote:
                cur_code.append(quote)
                state = "code"
            i += 1
        elif state == "line_comment":
            cur_comment.append(ch)
            i += 1
        else:  # block_comment
            if ch == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            cur_comment.append(ch)
            i += 1
    if cur_code or cur_comment:
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
    return code, comments


def lint_file(path, rel, findings):
    text = path.read_text(encoding="utf-8")
    code_lines, comment_lines = strip_code(text)
    raw_lines = text.splitlines()

    def report(lineno, rule, msg):
        findings.append(f"{rel}:{lineno}: {rule}: {msg}")

    for idx, line in enumerate(code_lines):
        lineno = idx + 1
        if RE_FORK.search(line) and rel not in FORK_ALLOWLIST:
            report(lineno, "fork-outside-executor",
                   "fork() is the executor's job; submit through "
                   "ProcessPool instead")
        if RE_CONST_CAST.search(line):
            report(lineno, "no-const-cast",
                   "const_cast is banned; restructure ownership instead")
        if rel not in NEW_ALLOWLIST:
            if RE_NEW.search(line):
                report(lineno, "naked-new-delete",
                       "naked new is banned; use make_unique/containers")
            if RE_DELETE.search(line):
                report(lineno, "naked-new-delete",
                       "naked delete is banned; use RAII ownership")
        if RE_CSTRING.search(line):
            report(lineno, "no-unbounded-cstring",
                   "unbounded C string call; use std::string/snprintf")
        if HOT_HEADERS_RE.match(rel) and RE_STD_FUNCTION.search(line):
            report(lineno, "no-std-function-hot",
                   "std::function is banned in hot-path headers; use "
                   "InlineFunction (sim/inline_function.hh)")
        if TRACE_HOT_RE.match(rel) and RE_TRACE_DEREF.search(line):
            report(lineno, "unguarded-trace-hot",
                   "unguarded trace/prof dereference in a hot header; "
                   "bind it first: if (TraceSink *ts = obs::trace())")
        if FUTURE_HOT_RE.match(rel) and RE_FUTURE.search(line):
            report(lineno, "no-future-hot",
                   "Future<> is banned in per-access hot-path headers; "
                   "use the intrusive awaitables "
                   "(sim/task.hh PendingValue/PendingVoid)")
        if RE_MEMCPY.search(line):
            lo = max(0, idx - MEMCPY_WINDOW)
            window = code_lines[lo:idx + 1]
            escapes = [raw_lines[j] if j < len(raw_lines) else ""
                       for j in range(lo, idx + 1)]
            checked = any(RE_MEMCPY_OK.search(l) for l in window) or \
                any(RE_MEMCPY_ESCAPE.search(comment_lines[j]) or
                    RE_MEMCPY_ESCAPE.search(escapes[j - lo])
                    for j in range(lo, idx + 1))
            if not checked:
                report(lineno, "unchecked-memcpy",
                       f"no size check within {MEMCPY_WINDOW} lines "
                       "before this memcpy (assert the bound, or mark "
                       "`// lint: checked-memcpy(<why>)`)")

    if path.suffix == ".hh":
        if not any(RE_GUARD.match(l) for l in code_lines):
            report(1, "header-guard",
                   "missing `#ifndef DUET_...` include guard")


# --selftest fixtures: (relative path, source text, expected rule names).
# Each case is linted as if the file sat at that path in the repo, so the
# allowlists and the hot-header set are exercised exactly as in a real
# run. Expected rules are compared as a multiset.
SELFTEST_CASES = [
    ("src/workload/bad_fork.cc", "int main() { fork(); }\n",
     ["fork-outside-executor"]),
    ("src/sim/executor.cc", "static void spawn() { fork(); }\n", []),
    ("src/cpu/bad_cast.cc",
     "int f(const int *p) { return *const_cast<int *>(p); }\n",
     ["no-const-cast"]),
    ("src/cpu/bad_new.cc", "int *f() { return new int(3); }\n",
     ["naked-new-delete"]),
    ("src/cpu/deleted_fn.hh",
     "#ifndef DUET_CPU_DELETED_FN_HH\n#define DUET_CPU_DELETED_FN_HH\n"
     "struct S { S(const S &) = delete; };\n#endif\n",
     []),
    ("src/sim/arena.cc", "char *f() { return new char[8]; }\n", []),
    ("src/mem/bad_copy.cc",
     "void f(char *d, const char *s) { memcpy(d, s, 8); }\n",
     ["unchecked-memcpy"]),
    ("src/mem/checked_copy.cc",
     "void f(char *d, const char *s, unsigned n) {\n"
     "    DUET_ASSERT(n <= 8, \"bound\");\n"
     "    memcpy(d, s, n);\n}\n",
     []),
    ("src/mem/escape_copy.cc",
     "void f(char *d, const char *s, unsigned n) {\n"
     "    memcpy(d, s, n); // lint: checked-memcpy(caller clamps n)\n}\n",
     []),
    ("src/cpu/bad_str.cc",
     "void f(char *d, const char *s) { strcpy(d, s); }\n",
     ["no-unbounded-cstring"]),
    ("src/cpu/no_guard.hh", "struct S {};\n", ["header-guard"]),
    # R7: the hot-header set, including the src/noc and src/system
    # extensions, rejects std::function and <functional> alike.
    ("src/noc/bad_hot.hh",
     "#ifndef DUET_NOC_BAD_HOT_HH\n#define DUET_NOC_BAD_HOT_HH\n"
     "#include <functional>\n"
     "struct M { std::function<void()> cb; };\n#endif\n",
     ["no-std-function-hot", "no-std-function-hot"]),
    ("src/system/bad_hot.hh",
     "#ifndef DUET_SYSTEM_BAD_HOT_HH\n#define DUET_SYSTEM_BAD_HOT_HH\n"
     "struct S { std::function<void()> observer; };\n#endif\n",
     ["no-std-function-hot"]),
    ("src/cache/bad_hot.hh",
     "#ifndef DUET_CACHE_BAD_HOT_HH\n#define DUET_CACHE_BAD_HOT_HH\n"
     "#include <functional>\n#endif\n",
     ["no-std-function-hot"]),
    # Cold headers and .cc files may keep std::function.
    ("src/workload/cold.hh",
     "#ifndef DUET_WORKLOAD_COLD_HH\n#define DUET_WORKLOAD_COLD_HH\n"
     "#include <functional>\n"
     "struct W { std::function<void()> hook; };\n#endif\n",
     []),
    ("src/noc/mesh.cc", "#include <functional>\n", []),
    # R8: unguarded switchboard dereferences in hot headers (including
    # the src/fpga/async_fifo.hh extension) are findings; the bound
    # null-check idiom and cold .cc files are not.
    ("src/noc/bad_trace.hh",
     "#ifndef DUET_NOC_BAD_TRACE_HH\n#define DUET_NOC_BAD_TRACE_HH\n"
     "inline void f() { obs::trace()->instant(1, \"x\", 0); }\n#endif\n",
     ["unguarded-trace-hot"]),
    ("src/fpga/async_fifo.hh",
     "#ifndef DUET_FPGA_ASYNC_FIFO_HH\n#define DUET_FPGA_ASYNC_FIFO_HH\n"
     "inline void g() { g_prof->beginEvent(); }\n#endif\n",
     ["unguarded-trace-hot"]),
    ("src/cache/good_trace.hh",
     "#ifndef DUET_CACHE_GOOD_TRACE_HH\n#define DUET_CACHE_GOOD_TRACE_HH\n"
     "inline void h() {\n"
     "    if (TraceSink *ts = obs::trace())\n"
     "        ts->instant(2, \"miss\", 0);\n}\n#endif\n",
     []),
    ("src/sim/trace_cold.cc",
     "void emit() { obs::trace()->instant(0, \"cold\", 0); }\n", []),
    # R9: Future construction in a per-access hot header is a finding;
    # the cold decoupled-rendezvous homes (src/core headers, any .cc)
    # are not.
    ("src/cpu/bad_future.hh",
     "#ifndef DUET_CPU_BAD_FUTURE_HH\n#define DUET_CPU_BAD_FUTURE_HH\n"
     "struct P { Future<std::uint64_t> pending; };\n#endif\n",
     ["no-future-hot"]),
    ("src/fpga/bad_future.hh",
     "#ifndef DUET_FPGA_BAD_FUTURE_HH\n#define DUET_FPGA_BAD_FUTURE_HH\n"
     "inline Future <void> fence();\n#endif\n",
     ["no-future-hot"]),
    ("src/core/cold_future.hh",
     "#ifndef DUET_CORE_COLD_FUTURE_HH\n#define DUET_CORE_COLD_FUTURE_HH\n"
     "struct R { Future<std::uint64_t> pop(unsigned reg); };\n#endif\n",
     []),
    ("src/cpu/future_cold.cc",
     "void f() { Future<int> scratch; }\n", []),
    # Comment/string stripping: prose never trips the code rules.
    ("src/cpu/prose.cc",
     "// a new coroutine is forked via const_cast-free magic\n"
     "const char *s() { return \"new fork() const_cast\"; }\n",
     []),
]


def selftest():
    import tempfile

    failures = []
    with tempfile.TemporaryDirectory() as td:
        for rel, text, expected in SELFTEST_CASES:
            path = Path(td) / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
            findings = []
            lint_file(path, rel, findings)
            got = sorted(f.split(": ")[1] for f in findings)
            if got != sorted(expected):
                failures.append(
                    f"{rel}: expected {sorted(expected)}, got {got} "
                    f"({findings})")
    for f in failures:
        print(f"selftest FAIL {f}", file=sys.stderr)
    if failures:
        print(f"lint_sim --selftest: {len(failures)}/"
              f"{len(SELFTEST_CASES)} cases failed", file=sys.stderr)
        return 1
    print(f"lint_sim --selftest: OK ({len(SELFTEST_CASES)} cases)",
          file=sys.stderr)
    return 0


def main(argv):
    if argv[1:] == ["--selftest"]:
        return selftest()
    roots = [Path(a) for a in argv[1:] if not a.startswith("-")]
    if any(a.startswith("-") for a in argv[1:]):
        print(__doc__)
        return 2
    if not roots:
        roots = [Path(__file__).resolve().parent.parent / "src"]
    base = None
    for root in roots:
        if not root.exists():
            print(f"lint_sim: no such path: {root}", file=sys.stderr)
            return 2
    findings = []
    nfiles = 0
    for root in roots:
        root = root.resolve()
        # Report paths relative to the repo root (the directory holding
        # src/), so allowlists match however the script is invoked.
        repo = root.parent if root.name == "src" else root
        files = [root] if root.is_file() else sorted(
            p for p in root.rglob("*") if p.suffix in (".cc", ".hh"))
        for path in files:
            rel = path.relative_to(repo).as_posix()
            nfiles += 1
            lint_file(path, rel, findings)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_sim: {len(findings)} finding(s) in {nfiles} files",
              file=sys.stderr)
        return 1
    print(f"lint_sim: OK ({nfiles} files clean)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
