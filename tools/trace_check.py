#!/usr/bin/env python3
"""Validate a `duet-trace/1` Chrome trace (duet_sim --trace output).

    python3 tools/trace_check.py TRACE.json

Checks the structural contract the simulator promises — the same one
Perfetto / chrome://tracing relies on to load the file:

  - the document is valid JSON with a `traceEvents` array,
    `displayTimeUnit` of "ms" or "ns", and
    `otherData.schema == "duet-trace/1"`;
  - every `thread_name` metadata record (ph "M") precedes every payload
    record, so viewers name tracks before populating them;
  - every record carries `pid == 1` (one simulated process) and an
    integer `tid` that a metadata record named;
  - payload phase types are limited to i (instant), X (complete),
    C (counter), b/e (async begin/end); `ts` is a non-negative number;
    X records carry a non-negative `dur`; C records carry numeric
    series values in `args`;
  - async begin/end records balance: every `e` closes an open `b` with
    the same (cat, id), and nothing is left open at end of trace —
    unless `otherData.truncated` is true, in which case the sink hit
    its record cap mid-stream and dangling opens are expected;
  - `otherData.records` equals the number of payload records.

Exit status: 0 = valid, 1 = contract violations (one per line),
2 = usage or I/O error.
"""

import json
import sys
from collections import Counter

VALID_PH = {"i", "X", "C", "b", "e"}


def check(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"trace_check: {path}: {e}")

    problems = []

    def bad(msg):
        problems.append(msg)

    if not isinstance(doc, dict):
        raise SystemExit(f"trace_check: {path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        bad("traceEvents is missing or not an array")
        events = []
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        bad(f"displayTimeUnit {doc.get('displayTimeUnit')!r} is not "
            "\"ms\" or \"ns\"")
    other = doc.get("otherData")
    if not isinstance(other, dict) or other.get("schema") != "duet-trace/1":
        bad("otherData.schema is not \"duet-trace/1\"")
        other = {}
    truncated = other.get("truncated", False)

    named_tids = set()
    seen_payload = False
    open_async = Counter()  # (cat, id) -> open begin count
    phases = Counter()
    payload = 0
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            bad(f"{where}: record is not an object")
            continue
        ph = ev.get("ph")
        if ev.get("pid") != 1:
            bad(f"{where}: pid {ev.get('pid')!r} != 1")
        tid = ev.get("tid")
        if not isinstance(tid, int) or tid < 0:
            bad(f"{where}: tid {tid!r} is not a non-negative integer")
            tid = None
        if ph == "M":
            if seen_payload:
                bad(f"{where}: metadata record after payload records")
            if ev.get("name") != "thread_name":
                bad(f"{where}: metadata record is not thread_name")
            name = ev.get("args", {}).get("name")
            if not isinstance(name, str) or not name:
                bad(f"{where}: thread_name args.name missing/empty")
            if tid is not None:
                named_tids.add(tid)
            phases["M"] += 1
            continue
        seen_payload = True
        payload += 1
        phases[ph] += 1
        if ph not in VALID_PH:
            bad(f"{where}: unknown phase {ph!r}")
            continue
        if tid is not None and tid not in named_tids:
            bad(f"{where}: tid {tid} has no thread_name metadata record")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) \
                or ts < 0:
            bad(f"{where}: ts {ts!r} is not a non-negative number")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) \
                    or dur < 0:
                bad(f"{where}: dur {dur!r} is not a non-negative number")
        elif ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                bad(f"{where}: counter record has no args series")
            else:
                for k, v in args.items():
                    if not isinstance(v, (int, float)) or \
                            isinstance(v, bool):
                        bad(f"{where}: counter series {k!r} value "
                            f"{v!r} is not numeric")
        elif ph in ("b", "e"):
            akey = (ev.get("cat"), ev.get("id"))
            if ev.get("id") is None:
                bad(f"{where}: async record has no id")
            elif ph == "b":
                open_async[akey] += 1
            elif open_async[akey] > 0:
                open_async[akey] -= 1
            else:
                bad(f"{where}: async end with no open begin for "
                    f"cat={akey[0]!r} id={akey[1]!r}")

    dangling = sum(open_async.values())
    if dangling and not truncated:
        bad(f"{dangling} async begin(s) never closed "
            "(and otherData.truncated is false)")
    if "records" in other and other["records"] != payload:
        bad(f"otherData.records {other['records']} != "
            f"{payload} payload records")

    summary = ", ".join(f"{ph}:{n}" for ph, n in sorted(phases.items()))
    return problems, payload, summary, truncated


def main(argv):
    if len(argv) != 2 or argv[1].startswith("-"):
        print(__doc__)
        return 2
    problems, payload, summary, truncated = check(argv[1])
    for p in problems:
        print(f"{argv[1]}: {p}")
    if problems:
        print(f"trace_check: {len(problems)} violation(s) in "
              f"{payload} payload records", file=sys.stderr)
        return 1
    note = " (truncated at record cap)" if truncated else ""
    print(f"trace_check: OK ({payload} payload records; {summary})"
          f"{note}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
