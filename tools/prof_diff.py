#!/usr/bin/env python3
"""Diff two `duet-prof/1` self-profiles (duet_sim --prof output).

    python3 tools/prof_diff.py BASELINE.json NEW.json

Components are joined on name. For every pair the wall-time and share
deltas are reported; per-component *event counts* are checked for
identity, because a fixed-seed scenario dispatches a deterministic
event stream — drifting counts mean the two profiles measured
different simulations (or differently-claimed components), not
different speeds. Wall-time changes alone never fail: sampling the
host clock around every event is inherently noisy.

Same CLI contract as tools/bench_diff.py.

Exit status:
  0  same component set, identical event counts everywhere
  1  event counts drifted or a component appeared/vanished
  2  usage or parse error

`--allow-semantic-drift` downgrades drift to a warning (exit 0) for
commits that intentionally re-claim components or change event
semantics.
"""

import argparse
import sys
import json


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"prof_diff: {path}: {e}")
    if doc.get("schema") != "duet-prof/1":
        raise SystemExit(
            f"prof_diff: {path}: schema {doc.get('schema')!r} is not "
            "duet-prof/1")
    return doc


def pct(base, new):
    if base == 0:
        return "n/a"
    return f"{(new - base) / base * 100.0:+.1f}%"


def main(argv):
    ap = argparse.ArgumentParser(
        prog="prof_diff.py",
        description="Diff two duet-prof/1 self-profiles.")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--allow-semantic-drift", action="store_true",
                    help="report event-count drift but exit 0")
    args = ap.parse_args(argv[1:])

    base = load(args.baseline)
    new = load(args.new)
    bcomp = {c["name"]: c for c in base.get("components", [])}
    ncomp = {c["name"]: c for c in new.get("components", [])}

    drift = []
    print(f"{'component':<12} {'events':>16} {'wall_ns':>24} "
          f"{'delta':>8} {'share':>14}")
    for name in sorted(bcomp):
        if name not in ncomp:
            drift.append(f"{name}: missing from {args.new}")
            continue
        b, n = bcomp[name], ncomp[name]
        ev = (f"{b['events']}" if b["events"] == n["events"]
              else f"{b['events']}->{n['events']}")
        print(f"{name:<12} {ev:>16} "
              f"{b['wall_ns']:>11} {n['wall_ns']:>12} "
              f"{pct(b['wall_ns'], n['wall_ns']):>8} "
              f"{b['share']:>6.4f} {n['share']:>7.4f}")
        if b["events"] != n["events"]:
            drift.append(f"{name}: events {b['events']} -> "
                         f"{n['events']}")
    for name in sorted(set(ncomp) - set(bcomp)):
        drift.append(f"{name}: missing from {args.baseline}")

    bw = base.get("wall_ms", 0.0)
    nw = new.get("wall_ms", 0.0)
    print(f"\ntotals: events {base.get('events')} -> {new.get('events')}"
          f", wall_ms {bw:.3f} -> {nw:.3f} ({pct(bw, nw)})")
    if base.get("events") != new.get("events"):
        drift.append(f"totals: events {base.get('events')} -> "
                     f"{new.get('events')}")

    if drift:
        print(f"\nprof_diff: {len(drift)} semantic difference(s):",
              file=sys.stderr)
        for d in drift:
            print(f"  {d}", file=sys.stderr)
        if not args.allow_semantic_drift:
            return 1
        print("prof_diff: --allow-semantic-drift given; not failing",
              file=sys.stderr)
    else:
        print("prof_diff: no semantic drift (wall-time-only changes)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
