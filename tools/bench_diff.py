#!/usr/bin/env python3
"""Diff two `duet-bench-sim/1` reports (duet_sim --bench output).

    python3 tools/bench_diff.py BASELINE.json NEW.json

Scenarios are joined on (workload, mode, cores, size, seed). For every
pair the wall-time delta is reported; event and tick counts are checked
for *identity*, because the bench doubles as the determinism gate: the
reference scenarios are fixed-seed simulations, so any drift in `events`
or `sim_ticks` means the simulator's semantics changed, not its speed.

Either report running under instrumentation (a row whose
`observability` field is anything but "off" — `--bench` records the
trace/prof state it measured under) is refused outright: traced wall
numbers are not comparable to a clean reference. Reports predating the
field are treated as "off".

Exit status:
  0  same scenario set, identical events/sim_ticks everywhere
  1  events or sim_ticks drifted, a scenario appeared/vanished, or a
     side reports correct=false (wall-time changes alone never fail)
  2  usage or parse error, or a side was benched under instrumentation

`--allow-semantic-drift` downgrades drift to a warning (exit 0) for the
rare commit that intentionally changes event semantics and updates the
committed reference in the same change.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"bench_diff: {path}: {e}")
    if doc.get("schema") != "duet-bench-sim/1":
        raise SystemExit(
            f"bench_diff: {path}: schema {doc.get('schema')!r} is not "
            "duet-bench-sim/1")
    return doc


def key(row):
    return (row["workload"], row["mode"], row["cores"], row["size"],
            row["seed"])


def fmt_key(k):
    workload, mode, cores, size, seed = k
    return f"{workload}/{mode} c{cores} s{size} seed{seed}"


def pct(base, new):
    if base == 0:
        return "n/a"
    return f"{(new - base) / base * 100.0:+.1f}%"


def main(argv):
    ap = argparse.ArgumentParser(
        prog="bench_diff.py",
        description="Diff two duet-bench-sim/1 reports.")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--allow-semantic-drift", action="store_true",
                    help="report events/ticks drift but exit 0")
    args = ap.parse_args(argv[1:])

    base = load(args.baseline)
    new = load(args.new)
    for path, doc in ((args.baseline, base), (args.new, new)):
        modes = sorted({r.get("observability", "off")
                        for r in doc.get("scenarios", [])} - {"off"})
        if modes:
            print(f"bench_diff: {path}: benched under instrumentation "
                  f"({', '.join(modes)}); wall times are not comparable "
                  "to a clean reference — re-run --bench without "
                  "--trace/--prof", file=sys.stderr)
            return 2
    brows = {key(r): r for r in base.get("scenarios", [])}
    nrows = {key(r): r for r in new.get("scenarios", [])}

    drift = []
    print(f"{'scenario':<34} {'wall_ms_min':>22} {'delta':>8} "
          f"{'events':>12} {'sim_ticks':>12}")
    for k in sorted(brows):
        if k not in nrows:
            drift.append(f"{fmt_key(k)}: missing from {args.new}")
            continue
        b, n = brows[k], nrows[k]
        ev = "same" if b["events"] == n["events"] else "DRIFT"
        tk = "same" if b["sim_ticks"] == n["sim_ticks"] else "DRIFT"
        print(f"{fmt_key(k):<34} "
              f"{b['wall_ms_min']:>10.3f} {n['wall_ms_min']:>11.3f} "
              f"{pct(b['wall_ms_min'], n['wall_ms_min']):>8} "
              f"{ev:>12} {tk:>12}")
        if b["events"] != n["events"]:
            drift.append(f"{fmt_key(k)}: events {b['events']} -> "
                         f"{n['events']}")
        if b["sim_ticks"] != n["sim_ticks"]:
            drift.append(f"{fmt_key(k)}: sim_ticks {b['sim_ticks']} -> "
                         f"{n['sim_ticks']}")
        for side, row in ((args.baseline, b), (args.new, n)):
            if not row.get("correct", False):
                drift.append(f"{fmt_key(k)}: correct=false in {side}")
    for k in sorted(set(nrows) - set(brows)):
        drift.append(f"{fmt_key(k)}: missing from {args.baseline}")

    bw = base["totals"]["wall_ms_min"]
    nw = new["totals"]["wall_ms_min"]
    speed = bw / nw if nw > 0 else float("inf")
    print(f"\ntotals: wall_ms_min {bw:.3f} -> {nw:.3f} "
          f"({pct(bw, nw)}, {speed:.3f}x)")

    if drift:
        print(f"\nbench_diff: {len(drift)} semantic difference(s):",
              file=sys.stderr)
        for d in drift:
            print(f"  {d}", file=sys.stderr)
        if not args.allow_semantic_drift:
            return 1
        print("bench_diff: --allow-semantic-drift given; not failing",
              file=sys.stderr)
    else:
        print("bench_diff: no semantic drift (wall-time-only changes)",
              file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
