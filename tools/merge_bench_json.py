#!/usr/bin/env python3
"""Merge google-benchmark JSON reports into one BENCH_micro.json.

Usage: merge_bench_json.py OUT IN.json [IN.json ...]

The merged document (schema duet-bench-micro/1) keeps one `context`
object — from the first input, since every report in a batch comes from
the same host and build — and concatenates the `benchmarks` arrays,
tagging each entry with the source report's basename in `source` so a
merged row still names the bench_* binary it came from. The output is
written to OUT.tmp and renamed, so an interrupted merge never leaves a
truncated report.
"""

import json
import os
import sys


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    out, inputs = argv[1], argv[2:]
    merged = {"schema": "duet-bench-micro/1", "context": None, "benchmarks": []}
    for path in inputs:
        with open(path) as f:
            doc = json.load(f)
        if merged["context"] is None:
            merged["context"] = doc.get("context")
        source = os.path.splitext(os.path.basename(path))[0]
        for entry in doc.get("benchmarks", []):
            entry = dict(entry)
            entry["source"] = source
            merged["benchmarks"].append(entry)
    tmp = out + ".tmp"
    with open(tmp, "w") as f:
        json.dump(merged, f, indent=2)
        f.write("\n")
    os.replace(tmp, out)
    print(
        f"merged {len(inputs)} reports, "
        f"{len(merged['benchmarks'])} benchmarks -> {out}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
